//! Property-based tests over the data-path state machines: bucket-table
//! session consistency under arbitrary scale-event sequences, Nagle byte
//! conservation, session-table invariants, token-bucket rate bounds,
//! shuffle-shard uniqueness, and histogram quantile ordering.

use canal::gateway::redirector::BucketTable;
use canal::gateway::sharding::ShuffleShardPlanner;
use canal::net::nagle::NagleBuffer;
use canal::net::{
    Endpoint, FiveTuple, GlobalServiceId, ServiceId, SessionTable, TenantId, TokenBucket, VpcAddr,
    VpcId,
};
use canal::sim::{Histogram, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn tup(sport: u16) -> FiveTuple {
    FiveTuple::tcp(
        Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, (sport >> 8) as u8, sport as u8), sport),
        Endpoint::new(VpcAddr::new(VpcId(1), 10, 8, 8, 8), 443),
    )
}

/// A random scale event against a bucket table.
#[derive(Debug, Clone)]
enum ScaleEvent {
    Offline { leaving: usize, replacement: usize },
    Added { new_replica: usize, take_every: usize },
}

fn scale_events() -> impl Strategy<Value = Vec<ScaleEvent>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, 8usize..16).prop_map(|(l, r)| ScaleEvent::Offline {
                leaving: l,
                replacement: r
            }),
            (8usize..16, 1usize..4).prop_map(|(n, t)| ScaleEvent::Added {
                new_replica: n,
                take_every: t
            }),
        ],
        0..4,
    )
}

proptest! {
    /// THE redirector invariant (Fig. 26): established flows keep reaching
    /// the replica that owns their state across ANY sequence of replica
    /// offline/online events, as long as chains don't overflow.
    #[test]
    fn bucket_table_session_consistency(
        events in scale_events(),
        sports in proptest::collection::btree_set(1u16..u16::MAX, 1..64),
    ) {
        let mut table = BucketTable::new(256, &[0, 1, 2, 3, 4, 5, 6, 7], 8);
        // Establish flows; record owners.
        let owners: Vec<(FiveTuple, usize)> = sports
            .iter()
            .map(|&sp| {
                let t = tup(sp);
                (t, table.dispatch(&t, true, |_, _| false).replica)
            })
            .collect();
        for ev in &events {
            match *ev {
                ScaleEvent::Offline { leaving, replacement } => {
                    if leaving != replacement {
                        table.replica_going_offline(leaving, replacement);
                    }
                }
                ScaleEvent::Added { new_replica, take_every } => {
                    table.replica_added(new_replica, take_every);
                }
            }
        }
        let oracle = owners.clone();
        for (t, owner) in &owners {
            let d = table.dispatch(t, false, |r, tpl| {
                oracle.iter().any(|(t2, o2)| t2 == tpl && *o2 == r)
            });
            prop_assert_eq!(d.replica, *owner, "flow rerouted by scale events");
        }
    }

    /// Nagle conserves bytes and never emits oversized segments.
    #[test]
    fn nagle_conserves_bytes(
        writes in proptest::collection::vec((1usize..4000, 0u64..500), 1..100),
    ) {
        let mut buf = NagleBuffer::with_defaults();
        let mut t = 0u64;
        let mut total_in = 0usize;
        for &(size, gap_us) in &writes {
            t += gap_us;
            buf.write(SimTime::from_micros(t), size);
            total_in += size;
        }
        buf.flush(SimTime::from_micros(t + 10_000));
        let total_out: usize = buf.segments().iter().map(|s| s.len).sum();
        prop_assert_eq!(total_in, total_out);
        prop_assert!(buf.segments().iter().all(|s| s.len <= 4000));
        prop_assert_eq!(buf.pending(), 0);
        // Segment timestamps are non-decreasing.
        prop_assert!(buf.segments().windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// Session tables never exceed capacity and account every outcome.
    #[test]
    fn session_table_capacity_and_accounting(
        capacity in 1usize..64,
        ops in proptest::collection::vec((any::<u16>(), 0u64..1000, any::<bool>()), 1..200),
    ) {
        let mut st = SessionTable::new(capacity, SimDuration::from_secs(60));
        let mut t_max = 0;
        for &(sport, t, close) in &ops {
            t_max = t_max.max(t);
            let now = SimTime::from_secs(t_max); // monotonic time
            if close {
                st.close(&tup(sport), now);
            } else {
                let _ = st.establish(tup(sport), now);
            }
            prop_assert!(st.len() <= capacity);
            let occ = st.occupancy();
            prop_assert!((0.0..=1.0).contains(&occ));
        }
        let (accepted, rejected, expired) = st.stats();
        prop_assert!(accepted as usize >= st.len());
        let _ = (rejected, expired);
    }

    /// Token buckets never admit more than rate*time + burst.
    #[test]
    fn token_bucket_rate_bound(
        rate in 1.0f64..1000.0,
        burst in 1.0f64..100.0,
        offered_per_ms in 1u64..20,
        duration_ms in 10u64..2000,
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut admitted = 0u64;
        for ms in 0..duration_ms {
            for _ in 0..offered_per_ms {
                if bucket.admit(SimTime::from_millis(ms)) {
                    admitted += 1;
                }
            }
        }
        let bound = rate * (duration_ms as f64 / 1000.0) + burst + 1.0;
        prop_assert!(admitted as f64 <= bound, "{admitted} > {bound}");
    }

    /// Shuffle-shard assignments are always unique and of the right size,
    /// and no single service's combination covers another's.
    #[test]
    fn shuffle_shard_uniqueness(
        seed in any::<u64>(),
        pool in 6usize..24,
        services in 2usize..20,
    ) {
        let shard = 3.min(pool);
        let mut rng = SimRng::seed(seed);
        let mut planner = ShuffleShardPlanner::new(pool, shard, shard - 1);
        let mut combos = BTreeSet::new();
        for i in 0..services {
            let c = planner.assign(
                GlobalServiceId::compose(TenantId(1), ServiceId(i as u32)),
                &mut rng,
            );
            prop_assert_eq!(c.len(), shard);
            prop_assert!(c.iter().all(|&b| b < pool));
            prop_assert!(combos.insert(c), "duplicate combination");
        }
        prop_assert!(planner.max_pairwise_overlap() < shard);
    }

    /// Histogram quantiles are monotone in q and bounded by min/max, with
    /// bucket-resolution relative error on lookups.
    #[test]
    fn histogram_quantiles_are_sound(
        values in proptest::collection::vec(0.0f64..1e9, 1..500),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev - 1e-9, "quantiles must be monotone");
            prop_assert!(v >= h.min() - 1e-9 && v <= h.max() + 1e-9);
            prev = v;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}
