//! Randomized (property-style) tests over the byte codecs and crypto:
//! whatever the inputs, round trips are lossless, corruption is detected,
//! and cryptographic agreements match. Cases are generated from a seeded
//! [`SimRng`] so every run explores the same reproducible inputs.

use bytes::Bytes;
use canal::crypto::chacha20::ChaCha20;
use canal::crypto::dh::{DhKeyPair, DhParams};
use canal::crypto::keystore::KeyStore;
use canal::http::{HeaderMap, Method, Request, RequestParser, Response, ResponseParser, StatusCode};
use canal::net::vxlan::{VxlanError, VxlanFrame, VXLAN_OVERHEAD};
use canal::net::TenantId;
use canal::sim::SimRng;

const CASES: usize = 128;

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let n = rng.index(max_len.max(1));
    (0..n).map(|_| rng.int_range(0, 256) as u8).collect()
}

fn random_string(rng: &mut SimRng, alphabet: &[u8], min_len: usize, max_len: usize) -> String {
    let n = min_len + rng.index(max_len - min_len + 1);
    (0..n)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

const HEADER_NAME_FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const HEADER_NAME_REST: &[u8] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
const PATH_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_.-";

fn header_name(rng: &mut SimRng) -> String {
    let mut s = random_string(rng, HEADER_NAME_FIRST, 1, 1);
    s.push_str(&random_string(rng, HEADER_NAME_REST, 0, 20));
    s
}

fn header_value(rng: &mut SimRng) -> String {
    // Printable ASCII without CR/LF.
    let n = rng.index(41);
    (0..n)
        .map(|_| (0x20 + rng.index(0x7F - 0x20)) as u8 as char)
        .collect()
}

/// VXLAN encode/decode is the identity for any VNI/ports/payload.
#[test]
fn vxlan_round_trip() {
    let mut rng = SimRng::seed(0x0DEC_0001);
    for _ in 0..CASES {
        let src = rng.u64() as u32;
        let dst = rng.u64() as u32;
        let sport = rng.u64() as u16;
        let vni = rng.int_range(0, 0x0100_0000) as u32;
        let payload = random_bytes(&mut rng, 1400);
        let frame = VxlanFrame::new(src, dst, sport, vni, payload.clone());
        let wire = frame.encode();
        assert_eq!(wire.len(), VXLAN_OVERHEAD + payload.len());
        let back = VxlanFrame::decode(wire).unwrap();
        assert_eq!(back, frame);
    }
}

/// Any single flipped byte in the IP header region is rejected (the
/// checksum covers the whole outer IP header).
#[test]
fn vxlan_header_corruption_detected() {
    let mut rng = SimRng::seed(0x0DEC_0002);
    for _ in 0..CASES {
        let mut payload = random_bytes(&mut rng, 255);
        payload.push(rng.int_range(0, 256) as u8); // 1..256 bytes
        let corrupt_at = rng.index(20);
        let xor = rng.int_range(1, 256) as u8;
        let frame = VxlanFrame::new(1, 2, 3, 42, payload);
        let mut wire = frame.encode().to_vec();
        wire[corrupt_at] ^= xor;
        let result = VxlanFrame::decode(Bytes::from(wire));
        assert!(result.is_err(), "corruption at {corrupt_at} accepted");
        // Specifically, never mis-decoded into a *different valid* frame.
        if let Err(e) = result {
            assert!(matches!(
                e,
                VxlanError::BadChecksum
                    | VxlanError::BadIpHeader
                    | VxlanError::LengthMismatch
                    | VxlanError::NotVxlan
                    | VxlanError::Truncated
            ));
        }
    }
}

/// HTTP requests round-trip through encode → incremental parse for any
/// method/path/headers/body, even fed one byte at a time.
#[test]
fn http_request_round_trip() {
    let methods = [
        Method::Get,
        Method::Post,
        Method::Put,
        Method::Delete,
        Method::Head,
        Method::Options,
        Method::Patch,
    ];
    let mut rng = SimRng::seed(0x0DEC_0003);
    for _ in 0..CASES {
        let method = methods[rng.index(methods.len())];
        let path_suffix = random_string(&mut rng, PATH_CHARS, 0, 30);
        let raw_headers: Vec<(String, String)> = (0..rng.index(5))
            .map(|_| (header_name(&mut rng), header_value(&mut rng)))
            .collect();
        let body = random_bytes(&mut rng, 512);
        let chunked_feed = rng.chance(0.5);

        let mut req = Request {
            method,
            path: format!("/{path_suffix}"),
            headers: HeaderMap::new(),
            body: Bytes::from(body.clone()),
        };
        // Deduplicate names (duplicate headers are order-preserved by the
        // map, but `get` returns the first — keep the oracle simple) and
        // avoid clashing with the serializer's Content-Length.
        let mut used = std::collections::BTreeSet::new();
        let headers: Vec<(String, String)> = raw_headers
            .into_iter()
            .filter(|(n, _)| {
                !n.eq_ignore_ascii_case("content-length")
                    && !n.eq_ignore_ascii_case("transfer-encoding")
                    && used.insert(n.to_ascii_lowercase())
            })
            .collect();
        for (n, v) in &headers {
            req.headers.insert(n, v.trim());
        }
        let wire = req.encode();
        let mut parser = RequestParser::new();
        let parsed = if chunked_feed {
            let mut got = None;
            for b in wire.iter() {
                if let Some(r) = parser.feed(&[*b]).unwrap() {
                    got = Some(r);
                }
            }
            got.expect("completes on final byte")
        } else {
            parser.feed(&wire).unwrap().expect("complete message")
        };
        assert_eq!(parsed.method, req.method);
        assert_eq!(&parsed.path, &req.path);
        assert_eq!(parsed.body.as_ref(), body.as_slice());
        for (n, v) in &headers {
            assert_eq!(parsed.headers.get(n), Some(v.trim()));
        }
    }
}

/// HTTP responses round-trip for any status code and body.
#[test]
fn http_response_round_trip() {
    let mut rng = SimRng::seed(0x0DEC_0004);
    for _ in 0..CASES {
        let code = rng.int_range(100, 600) as u16;
        let body = random_bytes(&mut rng, 512);
        let resp = Response::new(StatusCode(code), body.clone());
        let parsed = ResponseParser::new().feed(&resp.encode()).unwrap().unwrap();
        assert_eq!(parsed.status, StatusCode(code));
        assert_eq!(parsed.body.as_ref(), body.as_slice());
    }
}

/// ChaCha20 apply is an involution for any key/nonce/counter/message.
#[test]
fn chacha20_involution() {
    let mut rng = SimRng::seed(0x0DEC_0005);
    for _ in 0..CASES {
        let secret = rng.u64();
        let counter = rng.u64() as u32;
        let mut nonce = [0u8; 12];
        for b in &mut nonce {
            *b = rng.int_range(0, 256) as u8;
        }
        let msg = random_bytes(&mut rng, 2048);
        let cipher = ChaCha20::from_shared_secret(secret);
        let ct = cipher.encrypt(counter, &nonce, &msg);
        let pt = cipher.encrypt(counter, &nonce, &ct);
        assert_eq!(pt, msg.clone());
        if !msg.is_empty() {
            assert_ne!(ct, msg, "keystream must not be null");
        }
    }
}

/// DH agreement commutes for any private materials.
#[test]
fn dh_always_agrees() {
    let mut rng = SimRng::seed(0x0DEC_0006);
    for _ in 0..CASES {
        let (a, b) = (rng.u64(), rng.u64());
        let params = DhParams::DEFAULT;
        let alice = DhKeyPair::generate(params, a);
        let bob = DhKeyPair::generate(params, b);
        assert_eq!(alice.agree(bob.public), bob.agree(alice.public));
    }
}

/// The key store returns exactly what was stored, for any tenants and
/// key material, and never exposes plaintext at rest.
#[test]
fn keystore_round_trip() {
    let mut rng = SimRng::seed(0x0DEC_0007);
    for _ in 0..CASES {
        let master = rng.u64();
        let entries: std::collections::BTreeMap<u32, u64> = (0..1 + rng.index(7))
            .map(|_| (rng.u64() as u32, rng.u64()))
            .collect();
        let mut ks = KeyStore::new(master);
        for (&t, &k) in &entries {
            ks.store(TenantId(t), k);
        }
        for (&t, &k) in &entries {
            assert_eq!(ks.with_key(TenantId(t), |got| got), Some(k));
            let raw = ks.raw_stored_bytes(TenantId(t)).unwrap();
            // At-rest bytes never equal the plaintext key material.
            let plain = k.to_le_bytes();
            assert_ne!(raw, plain.as_slice());
        }
    }
}
