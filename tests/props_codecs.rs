//! Property-based tests over the byte codecs and crypto: whatever the
//! inputs, round trips are lossless, corruption is detected, and
//! cryptographic agreements match.

use canal::crypto::chacha20::ChaCha20;
use canal::crypto::dh::{DhKeyPair, DhParams};
use canal::crypto::keystore::KeyStore;
use canal::http::{HeaderMap, Method, Request, RequestParser, Response, ResponseParser, StatusCode};
use canal::net::vxlan::{VxlanFrame, VxlanError, VXLAN_OVERHEAD};
use canal::net::TenantId;
use bytes::Bytes;
use proptest::prelude::*;

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}".prop_map(|s| s)
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_filter("no colon-only names", |_| true)
}

proptest! {
    /// VXLAN encode/decode is the identity for any VNI/ports/payload.
    #[test]
    fn vxlan_round_trip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        vni in 0u32..=0x00FF_FFFF,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let frame = VxlanFrame::new(src, dst, sport, vni, payload.clone());
        let wire = frame.encode();
        prop_assert_eq!(wire.len(), VXLAN_OVERHEAD + payload.len());
        let back = VxlanFrame::decode(wire).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Any single flipped byte in the IP header region is rejected (the
    /// checksum covers the whole outer IP header).
    #[test]
    fn vxlan_header_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        corrupt_at in 0usize..20,
        xor in 1u8..=255,
    ) {
        let frame = VxlanFrame::new(1, 2, 3, 42, payload);
        let mut wire = frame.encode().to_vec();
        wire[corrupt_at] ^= xor;
        let result = VxlanFrame::decode(Bytes::from(wire));
        prop_assert!(result.is_err(), "corruption at {corrupt_at} accepted");
        // Specifically, never mis-decoded into a *different valid* frame.
        if let Err(e) = result {
            prop_assert!(matches!(
                e,
                VxlanError::BadChecksum
                    | VxlanError::BadIpHeader
                    | VxlanError::LengthMismatch
                    | VxlanError::NotVxlan
                    | VxlanError::Truncated
            ));
        }
    }

    /// HTTP requests round-trip through encode → incremental parse for any
    /// method/path/headers/body, even fed one byte at a time.
    #[test]
    fn http_request_round_trip(
        method_idx in 0usize..7,
        path_suffix in "[a-zA-Z0-9/_.-]{0,30}",
        headers in proptest::collection::vec((header_name(), header_value()), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..512),
        chunked_feed in any::<bool>(),
    ) {
        let methods = [
            Method::Get, Method::Post, Method::Put, Method::Delete,
            Method::Head, Method::Options, Method::Patch,
        ];
        let mut req = Request {
            method: methods[method_idx],
            path: format!("/{path_suffix}"),
            headers: HeaderMap::new(),
            body: Bytes::from(body.clone()),
        };
        // Deduplicate names (duplicate headers are order-preserved by the
        // map, but `get` returns the first — keep the oracle simple) and
        // avoid clashing with the serializer's Content-Length.
        let mut used = std::collections::BTreeSet::new();
        let headers: Vec<(String, String)> = headers
            .into_iter()
            .filter(|(n, _)| {
                !n.eq_ignore_ascii_case("content-length")
                    && !n.eq_ignore_ascii_case("transfer-encoding")
                    && used.insert(n.to_ascii_lowercase())
            })
            .collect();
        for (n, v) in &headers {
            req.headers.insert(n, v.trim());
        }
        let wire = req.encode();
        let mut parser = RequestParser::new();
        let parsed = if chunked_feed {
            let mut got = None;
            for b in wire.iter() {
                if let Some(r) = parser.feed(&[*b]).unwrap() {
                    got = Some(r);
                }
            }
            got.expect("completes on final byte")
        } else {
            parser.feed(&wire).unwrap().expect("complete message")
        };
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(&parsed.path, &req.path);
        prop_assert_eq!(parsed.body.as_ref(), body.as_slice());
        for (n, v) in &headers {
            prop_assert_eq!(parsed.headers.get(n), Some(v.trim()));
        }
    }

    /// HTTP responses round-trip for any status code and body.
    #[test]
    fn http_response_round_trip(
        code in 100u16..=599,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let resp = Response::new(StatusCode(code), body.clone());
        let parsed = ResponseParser::new().feed(&resp.encode()).unwrap().unwrap();
        prop_assert_eq!(parsed.status, StatusCode(code));
        prop_assert_eq!(parsed.body.as_ref(), body.as_slice());
    }

    /// ChaCha20 apply is an involution for any key/nonce/counter/message.
    #[test]
    fn chacha20_involution(
        secret in any::<u64>(),
        counter in any::<u32>(),
        nonce in any::<[u8; 12]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let cipher = ChaCha20::from_shared_secret(secret);
        let ct = cipher.encrypt(counter, &nonce, &msg);
        let pt = cipher.encrypt(counter, &nonce, &ct);
        prop_assert_eq!(pt, msg.clone());
        if !msg.is_empty() {
            prop_assert_ne!(ct, msg, "keystream must not be null");
        }
    }

    /// DH agreement commutes for any private materials.
    #[test]
    fn dh_always_agrees(a in any::<u64>(), b in any::<u64>()) {
        let params = DhParams::DEFAULT;
        let alice = DhKeyPair::generate(params, a);
        let bob = DhKeyPair::generate(params, b);
        prop_assert_eq!(alice.agree(bob.public), bob.agree(alice.public));
    }

    /// The key store returns exactly what was stored, for any tenants and
    /// key material, and never exposes plaintext at rest.
    #[test]
    fn keystore_round_trip(
        master in any::<u64>(),
        entries in proptest::collection::btree_map(any::<u32>(), any::<u64>(), 1..8),
    ) {
        let mut ks = KeyStore::new(master);
        for (&t, &k) in &entries {
            ks.store(TenantId(t), k);
        }
        for (&t, &k) in &entries {
            prop_assert_eq!(ks.with_key(TenantId(t), |got| got), Some(k));
            let raw = ks.raw_stored_bytes(TenantId(t)).unwrap();
            // At-rest bytes never equal the plaintext key material.
            let plain = k.to_le_bytes();
            prop_assert_ne!(raw, plain.as_slice());
        }
    }
}
