//! Double-run determinism harness: drive a full end-to-end mesh scenario
//! (multi-tenant gateway, weighted L7 routes, zero-trust authz, failure
//! injection, observability) twice with the same seed and demand
//! *bit-identical* outcome digests; then once more with a different seed
//! and demand a different digest, proving the digest actually covers the
//! seed-sensitive behaviour rather than constants.

// The shared scenario driver is test code even though it is not itself a
// `#[test]` fn, so clippy's allow-expect-in-tests does not reach it.
#![allow(clippy::expect_used)]

use canal::gateway::failure::FailureDomain;
use canal::http::Request;
use canal::sim::invariant::Digest;
use canal::sim::{SimDuration, SimRng};
use canal::testbed::{Testbed, TestbedConfig};

const REQUESTS: usize = 400;

/// Run the scenario and fold every observable outcome into a digest.
fn run_scenario(seed: u64) -> u64 {
    let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(seed));
    // Traffic driver randomness is split from the testbed's own stream so
    // the two evolve independently, as separate components would.
    let mut driver = SimRng::seed(seed ^ 0xD16E_57A7_E0F0_0D5E);

    let orders = tb.add_service(
        1,
        "orders",
        &[("/orders", "v1", 90), ("/orders", "v2", 10), ("/admin", "v1", 100)],
    );
    let search = tb.add_service(2, "search", &[("/q", "v1", 50), ("/q", "v2", 50)]);
    for id in [100, 101, 102] {
        tb.allow(orders, id);
    }
    tb.allow(search, 200);

    let mut digest = Digest::new();
    for i in 0..REQUESTS {
        // Mixed traffic: mostly legitimate, some unknown identities and
        // unrouted paths so rejects are part of the digested behaviour.
        let (identity, service, path) = match driver.index(10) {
            0..=5 => (
                100 + driver.index(3) as u64,
                orders,
                if driver.chance(0.8) { "/orders/1" } else { "/admin/x" },
            ),
            6..=7 => (200, search, "/q/abc"),
            8 => (31337, orders, "/orders/1"), // denied by zero-trust
            _ => (200, search, "/nowhere"),    // 404
        };
        let out = tb
            .send(identity, service, Request::get(path))
            .expect("request must parse");
        digest.write_u64(i as u64);
        digest.write_u64(out.status.0 as u64);
        digest.write_str(out.target.as_deref().unwrap_or("-"));
        let (b, r) = out.served_by.unwrap_or((u32::MAX, usize::MAX));
        digest.write_u64(b as u64);
        digest.write_u64(r as u64);
        // Mid-run churn: fail and recover backends so failover paths are
        // digested too.
        if i == REQUESTS / 4 {
            tb.gateway_mut().fail(FailureDomain::Backend(0)).expect("known backend");
        }
        if i == REQUESTS / 2 {
            tb.gateway_mut().recover(FailureDomain::Backend(0)).expect("known backend");
        }
        tb.advance(SimDuration::from_millis(driver.int_range(1, 5)));
    }

    // Fold the observability layers: access log on the gateway side,
    // transfer accounting on the node side, and the full canonical span
    // content of every assembled trace (canal-telemetry).
    for entry in tb.gateway_obs.log() {
        digest.write_u64(entry.at.as_nanos());
        digest.write_u64(entry.status.0 as u64);
        digest.write_str(&entry.path);
    }
    let (reqs, errs, p_err) = tb.gateway_obs.service_summary(orders);
    digest.write_u64(reqs).write_u64(errs).write_f64(p_err);
    digest.write_u64(tb.node_obs.labeling_ops());
    tb.collector.fold_digest(&mut digest);
    digest.value()
}

/// Same seed ⇒ the full scenario reproduces bit-for-bit.
#[test]
fn same_seed_same_digest() {
    let a = run_scenario(0xC0DE_2024);
    let b = run_scenario(0xC0DE_2024);
    assert_eq!(
        a, b,
        "two runs with the same seed diverged — a wall clock, ambient RNG \
         or unordered iteration crept into the deterministic path"
    );
}

/// Different seed ⇒ a different digest, so the harness is actually
/// sensitive to the randomized behaviour it claims to cover.
#[test]
fn different_seed_different_digest() {
    let a = run_scenario(0xC0DE_2024);
    let c = run_scenario(0xC0DE_2025);
    assert_ne!(a, c, "digest is insensitive to the seed — it covers nothing");
}

/// The digest itself is stable across compilations and platforms for fixed
/// inputs (FNV-1a with fixed constants) — pin one value so accidental
/// algorithm changes surface here instead of silently rebaselining.
#[test]
fn digest_algorithm_is_pinned() {
    let mut d = Digest::new();
    d.write_u64(1).write_str("canal").write_f64(0.5);
    assert_eq!(d.value(), PINNED, "digest algorithm changed: {:#018x}", d.value());
}

const PINNED: u64 = 0xad1d_4fd6_f027_d2b9;
