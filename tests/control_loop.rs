//! Integration of the control loop: gateway water levels → monitor →
//! root-cause analysis → precise scaling; plus the in-phase migration
//! planner against generated diurnal workloads and cross-architecture
//! control-plane invariants.

use canal::control::configure::ConfigPlane;
use canal::control::inphase::{BackendProfile, InPhasePlanner, ServiceProfile};
use canal::control::monitor::{Classification, MonitorDecision, WaterLevelMonitor};
use canal::control::scaling::{ScalingEngine, ScalingKind};
use canal::gateway::gateway::{Gateway, GatewayConfig};
use canal::mesh::arch::{Architecture, ClusterShape};
use canal::net::{AzId, Endpoint, FiveTuple, GlobalServiceId, ServiceId, TenantId, VpcAddr, VpcId};
use canal::sim::{SimDuration, SimRng, SimTime};
use canal::workload::rps::RpsProcess;

fn svc(i: u32) -> GlobalServiceId {
    GlobalServiceId::compose(TenantId(1), ServiceId(i))
}

fn tup(sport: u16, salt: u8) -> FiveTuple {
    FiveTuple::tcp(
        Endpoint::new(VpcAddr::new(VpcId(1), 10, salt, (sport >> 8) as u8, sport as u8), sport),
        Endpoint::new(VpcAddr::new(VpcId(1), 10, 99, 9, 9), 8443),
    )
}

/// The full loop: a surge trips the monitor, the decision is Scale, the
/// engine extends the service, the water level falls below the threshold.
#[test]
fn surge_detect_scale_recover() {
    let mut rng = SimRng::seed(10);
    let cfg = GatewayConfig {
        cpu_per_request: SimDuration::from_millis(8),
        backends_per_az: 6,
        sessions_per_replica: 2_000_000,
        ..GatewayConfig::default()
    };
    let mut gw = Gateway::new(cfg);
    let hot = svc(1);
    gw.register_service(hot, &mut rng);
    let mut monitor = WaterLevelMonitor::new();
    let mut engine = ScalingEngine::new();

    let mut sport = 1u16;
    let mut scaled = false;
    let mut final_hot_util = 1.0;
    for s in 0..60u64 {
        let rps = if s >= 20 { 2400 } else { 100 };
        for i in 0..rps {
            sport = sport.wrapping_add(1).max(1);
            let t = SimTime::from_millis(s * 1000 + (i * 1000 / rps).min(999));
            let _ = gw.handle_request(t, hot, &tup(sport, 1), true);
        }
        if s % 5 == 4 {
            let now = SimTime::from_secs(s + 1);
            let levels = gw.water_levels(now);
            let utils: Vec<(u32, f64)> = levels.iter().map(|w| (w.backend, w.utilization)).collect();
            final_hot_util = levels.iter().map(|w| w.utilization).fold(0.0, f64::max);
            for (backend, class, decision) in monitor.ingest(now, &levels, 0.7) {
                assert_eq!(class, Classification::NormalGrowth);
                if let MonitorDecision::Scale(service) = decision {
                    assert_eq!(service, hot);
                    let az = gw.placement().az_of(backend).unwrap();
                    for _ in 0..3 {
                        let r = engine.scale(now, &mut gw, service, az, &utils, &mut rng);
                        assert_eq!(r.kind, ScalingKind::Reuse);
                    }
                    scaled = true;
                }
            }
        }
    }
    assert!(scaled, "monitor never triggered scaling");
    assert!(
        final_hot_util < 0.5,
        "water level should fall after scaling: {final_hot_util}"
    );
    let (_, errors) = gw.stats();
    assert_eq!(errors, 0);
}

/// In-phase detection + migration planning over generated diurnal curves:
/// the planner picks the big in-phase service and lands it on the
/// complementary backend in the same AZ.
#[test]
fn inphase_planner_on_generated_curves() {
    let horizon = SimTime::from_secs(86_400);
    let curve = |phase: f64, amp: f64| {
        RpsProcess::Diurnal {
            base: 20.0,
            amplitude: amp,
            period: 86_400.0,
            phase,
        }
        .sample_curve(horizon, 96)
    };
    let services = vec![
        ServiceProfile {
            service: svc(1),
            series: curve(40_000.0, 900.0),
            long_sessions: 3,
            https_fraction: 0.5,
        },
        ServiceProfile {
            service: svc(2),
            series: curve(41_000.0, 600.0),
            long_sessions: 900,
            https_fraction: 0.0,
        },
        ServiceProfile {
            service: svc(3),
            series: curve(83_000.0, 700.0), // out of phase
            long_sessions: 0,
            https_fraction: 0.0,
        },
    ];
    let planner = InPhasePlanner::default();
    let pairs = planner.detect_in_phase(&services);
    assert_eq!(pairs.len(), 1, "only svc1/svc2 are in phase: {pairs:?}");

    let candidates = vec![
        BackendProfile {
            backend: 50,
            az: AzId(0),
            series: curve(40_500.0, 5_000.0), // in-phase target: bad
        },
        BackendProfile {
            backend: 51,
            az: AzId(0),
            series: curve(84_000.0, 5_000.0), // complementary: good
        },
        BackendProfile {
            backend: 52,
            az: AzId(1),
            series: vec![0.0; 96], // colder but wrong AZ
        },
    ];
    let group: Vec<&ServiceProfile> = services[..2].iter().collect();
    let plan = planner.plan(&group, AzId(0), &candidates, 1);
    assert_eq!(plan.moves.len(), 1);
    // svc1 has the higher weighted RPS (HTTPS-weighted) → moves first.
    assert_eq!(plan.moves[0], (svc(1), 51));
}

/// Control-plane invariants across architectures, any cluster size:
/// southbound bytes and target counts are totally ordered Canal < Ambient
/// < Istio, and Canal's bytes grow linearly while Istio's grow
/// quadratically.
#[test]
fn config_plane_orderings_hold_across_sizes() {
    for pods in [150usize, 600, 2400] {
        let shape = ClusterShape::production(pods);
        let istio = ConfigPlane::new(Architecture::Sidecar).push_update(&shape);
        let ambient = ConfigPlane::new(Architecture::Ambient).push_update(&shape);
        let canal = ConfigPlane::new(Architecture::Canal).push_update(&shape);
        assert!(canal.southbound_bytes < ambient.southbound_bytes);
        assert!(ambient.southbound_bytes < istio.southbound_bytes);
        // Canal configures exactly one target regardless of scale;
        // (Ambient's *proxy* count is below Istio's pod count, but its
        // replicated waypoints can exceed it as push targets at 2:1
        // pods:services, so no strict target ordering is asserted there.)
        assert_eq!(canal.targets, 1);
        assert_eq!(istio.targets, shape.pods);
        assert!(canal.total_time < istio.total_time);
    }
    // Growth orders.
    let small = ConfigPlane::new(Architecture::Sidecar)
        .push_update(&ClusterShape::production(300))
        .southbound_bytes as f64;
    let big = ConfigPlane::new(Architecture::Sidecar)
        .push_update(&ClusterShape::production(3_000))
        .southbound_bytes as f64;
    assert!(big / small > 50.0, "istio should be ~quadratic: {}", big / small);
    let small_c = ConfigPlane::new(Architecture::Canal)
        .push_update(&ClusterShape::production(300))
        .southbound_bytes as f64;
    let big_c = ConfigPlane::new(Architecture::Canal)
        .push_update(&ClusterShape::production(3_000))
        .southbound_bytes as f64;
    let growth = big_c / small_c;
    assert!((8.0..12.0).contains(&growth), "canal should be ~linear: {growth}");
}

/// Session-flood anomaly: the monitor classifies the §6.2 Case #1 signature
/// and decides on a lossy migration; the sandbox executes it in seconds.
#[test]
fn session_flood_triggers_lossy_migration() {
    let mut rng = SimRng::seed(11);
    let cfg = GatewayConfig {
        sessions_per_replica: 3_000, // small so occupancy moves
        azs: 1,
        backends_per_az: 1,
        shard_size: 1,
        replicas_per_backend: 1,
        ..GatewayConfig::default()
    };
    let mut gw = Gateway::new(cfg);
    let victim = svc(4);
    gw.register_service(victim, &mut rng);
    let mut monitor = WaterLevelMonitor::new();

    // Window 1: normal traffic — 2500 requests over 50 long-lived flows.
    for i in 0..2_500u16 {
        let _ = gw.handle_request(
            SimTime::from_millis(i as u64),
            victim,
            &tup(i % 50, 2),
            i < 50,
        );
    }
    monitor.ingest(SimTime::from_secs(1), &gw.water_levels(SimTime::from_secs(1)), 0.7);
    // Window 2: session flood — the same request rate, but every request
    // opens a fresh TCP session (the §6.2 Case #1 signature).
    for i in 0..2_500u16 {
        let _ = gw.handle_request(
            SimTime::from_millis(1000 + i as u64),
            victim,
            &tup(10_000 + i, 3),
            true,
        );
    }
    let decisions = monitor.ingest(SimTime::from_secs(2), &gw.water_levels(SimTime::from_secs(2)), 0.7);
    let (_, class, decision) = decisions.first().expect("alert fired");
    assert_eq!(*class, Classification::SessionAttack);
    let MonitorDecision::MigrateLossy(service) = decision else {
        panic!("expected lossy migration, got {decision:?}");
    };
    let report = gw
        .sandbox
        .migrate_lossy(SimTime::from_secs(2), *service, gw.backend_sessions(0));
    assert!(report.completed_at.since(SimTime::from_secs(2)) <= SimDuration::from_secs(5));
    assert!(report.sessions_reset > 2_000);
}
