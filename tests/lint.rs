//! canal-lint wired into the test suite: `cargo test` fails when the
//! workspace violates the determinism contract, and the known-bad fixture
//! snippets double as a self-test that every rule family still fires.

use canal_lint::{rules, scan_fixture_dir, scan_workspace, workspace_root};

/// The whole workspace satisfies the determinism, layering and
/// panic-policy rules (modulo annotated `lint:allow` exceptions, each of
/// which must carry a reason — enforced by the scanner itself).
#[test]
fn workspace_is_lint_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        report.clean(),
        "\ncanal-lint found violations — run `cargo run -p canal-lint` for the report:\n{}",
        report.render()
    );
    // Sanity: the scan actually covered the tree (not an empty walk from a
    // wrong root).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(
        report.manifests_checked >= 12,
        "suspiciously few manifests checked: {}",
        report.manifests_checked
    );
}

/// Every rule id fires on the fixture directory of known-bad snippets, so
/// a regression that silently disables a rule family turns the suite red.
#[test]
fn fixtures_trip_every_rule() {
    let dir = workspace_root().join("crates").join("lint").join("fixtures");
    let report = scan_fixture_dir(&dir).expect("scan fixtures");
    assert!(!report.clean(), "fixtures must produce violations");
    let fired = report.rules_fired();
    for rule in rules::RULE_IDS {
        assert!(
            fired.contains(rule),
            "rule `{rule}` did not fire on any fixture; fired: {fired:?}"
        );
    }
    // The well-formed suppression in the fixtures is honoured, proving the
    // allow-path works end to end.
    assert!(
        report.suppressed.iter().any(|s| s.rule == "panic"),
        "expected at least one honoured suppression in fixtures"
    );
    // The graph-aware rules fire on their dedicated fixture, not by
    // accident somewhere else — and the PR-5-shaped fixture trips the
    // field-fold prong by name.
    let at = |rule: &str, file: &str| {
        report
            .violations
            .iter()
            .any(|v| v.rule == rule && v.file.contains(file))
    };
    assert!(at("digest-coverage", "digest_coverage.rs"));
    assert!(at("digest-coverage", "rollout_last_good.rs"));
    assert!(at("bounded-state", "bounded_state.rs"));
    assert!(at("seed-dataflow", "seed_dataflow.rs"));
    assert!(at("global-state", "global_state.rs"));
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.file.contains("rollout_last_good.rs") && v.message.contains("last_good")),
        "the field-fold prong must name the unfolded field"
    );
}
