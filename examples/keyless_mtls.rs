//! Remote mTLS acceleration and the keyless mode (§4.1.3, App. B).
//!
//! A full cryptographic round trip through the key server: the tenant
//! entrusts (or, in keyless mode, withholds) its private key; an on-node
//! proxy and a gateway backend complete a handshake without ever holding
//! the private key; application bytes then flow over the derived ChaCha20
//! channel. Ends with the Fig. 23 completion-time comparison.
//!
//! ```sh
//! cargo run --example keyless_mtls
//! ```

// Examples, like tests, assert the scenario works via unwrap.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use canal::crypto::accel::{AsymmetricBackend, LocalBatchBackend, SoftwareBackend};
use canal::crypto::dh::{DhKeyPair, DhParams};
use canal::crypto::keyserver::{
    KeyServer, KeyServerConfig, KeyServerPlacement, RemoteKeyServerBackend, RequesterId,
};
use canal::crypto::mtls::MtlsEndpoint;
use canal::net::TenantId;

fn main() {
    // --- The multi-tenant key server holds tenant1's private key,
    //     encrypted in memory. ---
    let mut ks = KeyServer::new(KeyServerConfig::default(), 0x5EED_CAFE);
    let tenant = TenantId(1);
    ks.store_tenant_key(tenant, 0x0123_4567_89AB_CDEF);

    // The on-node proxy pre-establishes its verified requester channel.
    let proxy = RequesterId(42);
    let channel_secret = 0xC0FF_EE00_1234_5678;
    ks.register_requester(proxy, channel_secret);

    // --- A client workload opens an mTLS connection to the gateway. ---
    // The client side generates its ephemeral pair; the tenant side of the
    // DH is computed *at the key server* — the node never sees the key.
    let client = DhKeyPair::generate(DhParams::DEFAULT, 0xE9E9_0001);
    let sealed = ks
        .handle_request(proxy, tenant, client.public)
        .expect("verified requester");
    let node_secret = sealed.unseal(channel_secret).expect("channel intact");
    let client_secret = client.agree(ks.tenant_public(tenant).unwrap());
    assert_eq!(node_secret, client_secret);
    println!("key server derived the symmetric key; node never held the private key");

    // Both endpoints install the derived secret and exchange records.
    let mut node_end = MtlsEndpoint::new(1001, 0);
    let mut gw_end = MtlsEndpoint::new(2002, 0);
    node_end.install_secret(node_secret, 2002).unwrap();
    gw_end.install_secret(client_secret, 1001).unwrap();
    let record = node_end.seal(b"GET /orders HTTP/1.1\r\nHost: svc\r\n\r\n").unwrap();
    let plaintext = gw_end.open(&record).unwrap();
    println!(
        "gateway decrypted {} bytes over the ChaCha20 session channel",
        plaintext.len()
    );

    // An unverified requester gets nothing.
    let err = ks.handle_request(RequesterId(666), tenant, client.public);
    println!("unverified requester -> {err:?}");

    // --- Keyless mode (App. B): the financial tenant keeps its key
    //     on-premises; same protocol, higher RTT, zero key custody. ---
    let mut onprem = KeyServer::new(
        KeyServerConfig {
            placement: KeyServerPlacement::OnPremKeyless,
            ..Default::default()
        },
        0xFA11_BACC,
    );
    let fin = TenantId(77);
    onprem.store_tenant_key(fin, 0xFEED_F00D_0000_1111);
    onprem.register_requester(proxy, channel_secret);
    let sealed = onprem.handle_request(proxy, fin, client.public).unwrap();
    sealed.unseal(channel_secret).unwrap();
    println!("\nkeyless mode: handshake served from the tenant's own premises");

    // --- Fig. 23: completion time per backend. ---
    println!("\nasymmetric completion time by backend (1 vs 64 concurrent new conns):");
    let backends: Vec<Box<dyn AsymmetricBackend>> = vec![
        Box::new(SoftwareBackend::default()),
        Box::new(LocalBatchBackend::default()),
        Box::new(RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz)),
        Box::new(RemoteKeyServerBackend::new(KeyServerPlacement::OnPremKeyless)),
    ];
    for b in &backends {
        println!(
            "  {:<22} {:>7.2} ms | {:>7.2} ms",
            b.name(),
            b.completion(1).as_millis_f64(),
            b.completion(64).as_millis_f64()
        );
    }
}
