//! Quickstart: stand up a two-tenant Canal Mesh, route real HTTP requests
//! through the centralized gateway, and compare the three architectures'
//! per-request latency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

// Examples, like tests, assert the scenario works via unwrap.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use canal::cluster::topology::{Cluster, ClusterSpec, Tenant};
use canal::gateway::gateway::{Gateway, GatewayConfig};
use canal::http::{Request, RoutePredicate, RouteRule, RouteTable, WeightedTarget};
use canal::mesh::arch::{build, Architecture, RequestCtx};
use canal::mesh::authz::{AuthzPolicy, AuthzRule};
use canal::mesh::l7::{L7Engine, L7Outcome};
use canal::mesh::path::PathExecutor;
use canal::mesh::CostModel;
use canal::net::{Endpoint, FiveTuple, GlobalServiceId, ServiceId, TenantId, VpcAddr, VpcId};
use canal::sim::{SimRng, SimTime};

fn main() {
    let mut rng = SimRng::seed(7);

    // --- 1. Two tenants, each with a production-shaped cluster. ---
    let tenants: Vec<Tenant> = (1..=2)
        .map(|i| Tenant {
            id: TenantId(i),
            vpc: VpcId(i),
            uses_l7: true,
            uses_l7_routing: true,
            uses_l7_security: i == 1,
        })
        .collect();
    let clusters: Vec<Cluster> = tenants
        .iter()
        .map(|t| Cluster::generate(t.clone(), ClusterSpec::paper_testbed(), &mut rng))
        .collect();
    for c in &clusters {
        println!(
            "{}: {} nodes, {} pods, {} services",
            c.tenant.id,
            c.node_count(),
            c.pod_count(),
            c.service_count()
        );
    }

    // --- 2. Register every tenant service on the shared mesh gateway. ---
    let mut gw = Gateway::new(GatewayConfig::default());
    for c in &clusters {
        for svc in c.services.values() {
            let gid = GlobalServiceId::compose(c.tenant.id, svc.id);
            let backends = gw.register_service(gid, &mut rng);
            println!("registered {gid} on gateway backends {backends:?}");
        }
    }

    // --- 3. An L7 config for tenant1/svc0: canary split + zero trust. ---
    let mut routes = RouteTable::new();
    routes.push(RouteRule::new(
        "orders",
        RoutePredicate::prefix("/orders"),
        vec![WeightedTarget::new("v1", 90), WeightedTarget::new("v2", 10)],
    ));
    let mut authz = AuthzPolicy::default_deny();
    authz.push(AuthzRule::allow(&[100, 101], "/orders"));
    let mut l7 = L7Engine::new(routes, authz);

    // --- 4. Send real HTTP bytes through the L7 engine + gateway. ---
    let service = GlobalServiceId::compose(TenantId(1), ServiceId(0));
    let mut v2_hits = 0;
    for i in 0..20u16 {
        let wire = Request::get("/orders/123")
            .with_header("Host", "orders.tenant1")
            .encode();
        let outcome = l7
            .process_bytes(SimTime::from_millis(i as u64), 100, &wire, rng.f64())
            .expect("valid http");
        let tuple = FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), 40_000 + i),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 1, 1), 8000),
        );
        match outcome {
            L7Outcome::Forward { target, .. } => {
                if target == "v2" {
                    v2_hits += 1;
                }
                let served = gw
                    .handle_request(SimTime::from_millis(i as u64), service, &tuple, true)
                    .expect("gateway dispatch");
                println!(
                    "req {i:>2} -> {target} via backend {} replica {}",
                    served.backend, served.replica
                );
            }
            L7Outcome::Reject(code) => println!("req {i:>2} rejected: {code}"),
        }
    }
    println!("canary took {v2_hits}/20 requests (~10% expected)\n");

    // An unauthorized identity is stopped by the zero-trust policy.
    let wire = Request::get("/orders/123").encode();
    let denied = l7
        .process_bytes(SimTime::from_secs(1), 31337, &wire, 0.5)
        .unwrap();
    println!("unauthorized identity -> {:?}\n", denied.status());

    // --- 5. Architecture latency comparison (the Fig. 10 shape). ---
    println!("light-load request latency by architecture:");
    let ctx = RequestCtx::light();
    for kind in Architecture::ALL {
        let arch = build(kind, CostModel::default());
        let us = PathExecutor::unloaded_latency(&arch.request_steps(&ctx)).as_micros_f64();
        println!("  {:<14} {:>8.0} µs", arch.name(), us);
    }
}
