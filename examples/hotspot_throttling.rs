//! Exception handling under a hotspot event (§6.2 Cases #1–#3).
//!
//! Three incidents against the same gateway:
//!
//! 1. a TCP-session flood (sessions surge, RPS flat) → lossy sandbox
//!    migration within seconds;
//! 2. an hours-long suspicious ramp → lossless migration draining by flow
//!    timeout;
//! 3. a social-media flash crowd overwhelming the customer's own cluster →
//!    redirector-level throttling, gradually relaxed as the customer
//!    scales.
//!
//! ```sh
//! cargo run --example hotspot_throttling
//! ```

use canal::gateway::sandbox::Sandbox;
use canal::net::{GlobalServiceId, ServiceId, TenantId};
use canal::sim::{SimDuration, SimRng, SimTime};
use canal::workload::attack::AttackScenario;
use canal::workload::rps::RpsProcess;

fn svc(t: u32) -> GlobalServiceId {
    GlobalServiceId::compose(TenantId(t), ServiceId(0))
}

fn main() {
    let mut rng = SimRng::seed(11);
    let mut sandbox = Sandbox::new();

    // --- Case #1: session flood → lossy migration. ---
    println!("--- Case #1: session flood ---");
    let flood = AttackScenario::session_flood(
        SimDuration::from_secs(120),
        SimDuration::from_secs(60),
        2_000,
        80_000,
        &mut rng,
    );
    println!(
        "peak sessions/s {} vs peak rps {} — the Case #1 signature",
        flood.peak_sessions(),
        flood.peak_rps()
    );
    let report = sandbox.migrate_lossy(SimTime::from_secs(75), svc(1), 160_000);
    println!(
        "lossy migration: {} sessions reset, serving from sandbox at t={} (seconds later)",
        report.sessions_reset, report.completed_at
    );

    // --- Case #2: slow suspicious growth → lossless migration. ---
    println!("\n--- Case #2: slow growth ---");
    let _ramp = AttackScenario::slow_growth(SimDuration::from_secs(4 * 3600), 3_000, 6.0, &mut rng);
    // Live flows drain by their own timeouts; median ≈ 20 min.
    let remaining: Vec<SimDuration> = (0..500)
        .map(|_| SimDuration::from_secs_f64(rng.lognormal(1200.0, 0.4)))
        .collect();
    let report = sandbox.migrate_lossless(SimTime::from_secs(4 * 3600), svc(2), &remaining);
    println!(
        "lossless migration: 0 sessions reset; full cutover at t={} (drain-bound)",
        report.completed_at
    );

    // --- Case #3: flash crowd → throttle, then relax. ---
    println!("\n--- Case #3: hotspot flash crowd ---");
    let crowd = RpsProcess::FlashCrowd {
        base: 10_000.0,
        at: 30.0,
        surge: 190_000.0,
        decay: 600.0,
    };
    let app_capacity = 40_000.0; // what the customer's cluster can take
    // The event loop below samples offered load at 1/100 scale, so the
    // bucket is scaled identically.
    sandbox.throttle(svc(3), app_capacity / 100.0, app_capacity / 1000.0);
    let mut admitted = 0u64;
    let mut dropped = 0u64;
    for s in 0..120u64 {
        let offered = crowd.rate_at(SimTime::from_secs(s)) as u64;
        let samples = offered / 100; // sample at 1/100 scale
        for i in 0..samples {
            let t = SimTime::from_millis(s * 1000 + i * 1000 / (samples + 1));
            if sandbox.admit(t, svc(3)) {
                admitted += 1;
            } else {
                dropped += 1;
            }
        }
        // The customer's autoscaling comes online at t=90: relax gradually.
        if s == 90 {
            sandbox.adjust_throttle(SimTime::from_secs(s), svc(3), app_capacity * 3.0 / 100.0);
            println!("t=90s: customer scaled out; throttle relaxed to 3x");
        }
    }
    println!(
        "during the event: {} admitted, {} dropped at the redirector (early rate limiting)",
        admitted * 100,
        dropped * 100
    );
    sandbox.unthrottle(svc(3));
    println!("event over; throttle removed");
}
