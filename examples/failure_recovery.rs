//! Hierarchical failure recovery and session consistency (Fig. 8, §4.2,
//! App. C / Fig. 26).
//!
//! Walks the exact Fig. 8 scenario: replica failures, whole-backend
//! failures, an AZ outage, the shuffle-sharding blast-radius guarantee —
//! then shows the Beamer-style redirector keeping established sessions on
//! their replica while one drains off.
//!
//! ```sh
//! cargo run --example failure_recovery
//! ```

// Examples, like tests, assert the scenario works via unwrap.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use canal::cluster::dns::DnsView;
use canal::gateway::failure::{FailureDomain, PlacementView};
use canal::gateway::redirector::BucketTable;
use canal::gateway::sharding::ShuffleShardPlanner;
use canal::net::{
    AzId, Endpoint, FiveTuple, GlobalServiceId, ServiceId, TenantId, VpcAddr, VpcId,
};
use canal::sim::SimRng;

fn main() {
    // --- Fig. 8 placement: A on Backend1/2 (AZ1) + Backend3 (AZ2);
    //     B on Backend2 + Backend4. ---
    let svc_a = GlobalServiceId::compose(TenantId(1), ServiceId(0xA));
    let svc_b = GlobalServiceId::compose(TenantId(2), ServiceId(0xB));
    let mut view = PlacementView::new();
    for (b, az) in [(1, 1), (2, 1), (3, 2), (4, 1)] {
        view.add_backend(b, AzId(az), 3);
    }
    for b in [1, 2, 3] {
        view.place(svc_a, b);
    }
    view.place(svc_b, 2);
    view.place(svc_b, 4);

    println!("--- replica level ---");
    view.fail(FailureDomain::Replica(1, 0)).unwrap();
    view.fail(FailureDomain::Replica(1, 1)).unwrap();
    println!(
        "two replicas of backend1 down; backend1 available: {}",
        view.backend_available(1)
    );

    println!("\n--- backend level ---");
    view.fail(FailureDomain::Backend(1)).unwrap();
    println!(
        "backend1 down; service A available in AZ1: {} (backend2 holds)",
        view.service_available_in_az(svc_a, AzId(1))
    );

    println!("\n--- AZ level ---");
    view.fail(FailureDomain::Az(AzId(1))).unwrap();
    println!(
        "AZ1 down; service A available: {} (cross-AZ backend3), service B available: {}",
        view.service_available(svc_a),
        view.service_available(svc_b)
    );
    view.recover(FailureDomain::Az(AzId(1))).unwrap();
    view.recover(FailureDomain::Backend(1)).unwrap();

    // --- DNS failover prefers the local AZ and spills only when empty. ---
    println!("\n--- AZ-aware DNS ---");
    let mut dns = DnsView::new();
    let vip = |last| VpcAddr::new(VpcId(0), 172, 16, 0, last);
    dns.add("gw.canal", AzId(1), vip(1));
    dns.add("gw.canal", AzId(2), vip(2));
    println!(
        "client in AZ1 resolves to {}",
        dns.resolve("gw.canal", AzId(1)).unwrap().addr
    );
    dns.set_health("gw.canal", vip(1), false);
    println!(
        "AZ1 VIP down: client now resolves to {}",
        dns.resolve("gw.canal", AzId(1)).unwrap().addr
    );

    // --- Shuffle sharding: killing all of one service's backends never
    //     takes a second service fully down. ---
    println!("\n--- shuffle sharding blast radius ---");
    let mut rng = SimRng::seed(99);
    let mut planner = ShuffleShardPlanner::new(12, 3, 2);
    for i in 0..20u32 {
        planner.assign(GlobalServiceId::compose(TenantId(3), ServiceId(i)), &mut rng);
    }
    let victim = GlobalServiceId::compose(TenantId(3), ServiceId(0));
    let combo = planner.combination(victim).unwrap().to_vec();
    let lost = planner.services_lost_if(&combo);
    println!(
        "query of death kills backends {combo:?} -> services fully lost: {} of 20",
        lost.len()
    );

    // --- Redirector session consistency during a replica drain. ---
    println!("\n--- redirector drain (Fig. 26) ---");
    let mut table = BucketTable::new(128, &[1, 2], 4);
    let tuple = |sport: u16| {
        FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 7, 7), 443),
        )
    };
    let flows: Vec<(FiveTuple, usize)> = (0..100u16)
        .map(|i| {
            let t = tuple(2000 + i);
            (t, table.dispatch(&t, true, |_, _| false).replica)
        })
        .collect();
    table.replica_going_offline(2, 3);
    let owners = flows.clone();
    let consistent = flows
        .iter()
        .filter(|(t, owner)| {
            table
                .dispatch(t, false, |r, tpl| {
                    owners.iter().any(|(t2, o2)| t2 == tpl && *o2 == r)
                })
                .replica
                == *owner
        })
        .count();
    let new_on_2 = (0..100u16)
        .filter(|i| table.dispatch(&tuple(9000 + i), true, |_, _| false).replica == 2)
        .count();
    println!("IP2 going offline: {consistent}/100 old flows stay put, {new_on_2} new flows reach IP2");
    table.replica_removed(2);
    println!("after drain, IP2 removed from every chain");
}
