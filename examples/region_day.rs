//! A day in a cloud region, end to end on the event engine.
//!
//! Builds a gateway with six tenant services, attaches diurnal workloads
//! with different phases plus one afternoon flash crowd, and lets the full
//! control loop run: monitoring windows classify what they see, scalings
//! are planned and land only when they complete, and the report prints the
//! operational timeline — the machinery behind Figs. 16–20.
//!
//! ```sh
//! cargo run --release --example region_day
//! ```

use canal::control::region::RegionSimulation;
use canal::gateway::gateway::{Gateway, GatewayConfig};
use canal::net::{GlobalServiceId, ServiceId, TenantId};
use canal::sim::{SimDuration, SimRng, SimTime};
use canal::workload::rps::RpsProcess;

fn main() {
    let cfg = GatewayConfig {
        backends_per_az: 6,
        cpu_per_request: SimDuration::from_millis(8),
        sessions_per_replica: 8_000_000,
        ..GatewayConfig::default()
    };
    let mut gw = Gateway::new(cfg);
    let mut rng = SimRng::seed(77);
    let services: Vec<GlobalServiceId> = (0..6)
        .map(|t| GlobalServiceId::compose(TenantId(t), ServiceId(0)))
        .collect();
    for &s in &services {
        gw.register_service(s, &mut rng);
    }

    // A compressed "day": 1 simulated hour at 1/1 scale stands in for the
    // 24-hour cycle (divisor keeps the run fast while the shapes hold).
    let horizon = SimTime::from_secs(3600);
    let mut region = RegionSimulation::new(gw, horizon, SimRng::seed(77));
    region.sample_divisor = 4;
    for (i, &s) in services.iter().enumerate() {
        region.add_workload(
            s,
            RpsProcess::Diurnal {
                base: 100.0,
                amplitude: 700.0,
                period: 3600.0,
                phase: i as f64 * 600.0, // staggered peaks across tenants
            },
        );
    }
    // Tenant 0 also catches a hotspot event mid-"day".
    region.add_workload(
        services[0],
        RpsProcess::FlashCrowd {
            base: 150.0,
            at: 1800.0,
            surge: 8_000.0,
            decay: 240.0,
        },
    );

    println!("running one region-day on the event engine...");
    let report = region.run();

    println!("\n--- operational report ---");
    println!("requests served : {}", report.served);
    println!("gateway errors  : {}", report.errors);
    println!("scaling ops     : {}", report.scalings.len());
    for (i, &(exec, fin, reuse)) in report.scalings.iter().enumerate() {
        println!(
            "  #{i}: {} executed {} -> capacity live {} ({} later)",
            if reuse { "Reuse" } else { "New" },
            exec,
            fin,
            fin.since(exec)
        );
    }
    println!("migrations      : {}", report.migrations.len());

    println!("\nhottest-backend utilization (per minute):");
    for &(t, u) in report
        .hot_utilization
        .points()
        .iter()
        .filter(|&&(t, _)| t.as_nanos() % 60_000_000_000 == 0)
    {
        let bars = "#".repeat((u * 40.0) as usize);
        println!("  {:>6} {:>5.1}% {}", t, u * 100.0, bars);
    }
}
