//! Noisy-neighbor isolation (the Fig. 16 incident, §4.3 / §5.5).
//!
//! One tenant's service suddenly multiplies its traffic 20×; the shared
//! backend's water level crosses the safety threshold. Watch the monitor
//! raise a backend-level alert, root-cause analysis name the culprit, and
//! precise scaling (`Reuse`) extend the hot service onto low-water backends
//! — while the other tenants' services never notice.
//!
//! ```sh
//! cargo run --release --example noisy_neighbor
//! ```

use canal::control::monitor::{MonitorDecision, WaterLevelMonitor};
use canal::control::rca::{BackendTrends, RcaVerdict, RootCauseAnalyzer};
use canal::control::scaling::ScalingEngine;
use canal::gateway::gateway::{Gateway, GatewayConfig};
use canal::net::{AzId, Endpoint, FiveTuple, GlobalServiceId, ServiceId, TenantId, VpcAddr, VpcId};
use canal::sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

fn tuple(vpc: u32, sport: u16) -> FiveTuple {
    FiveTuple::tcp(
        Endpoint::new(VpcAddr::new(VpcId(vpc), 10, 1, (sport >> 8) as u8, sport as u8), sport),
        Endpoint::new(VpcAddr::new(VpcId(vpc), 10, 9, 9, 9), 8443),
    )
}

fn main() {
    let mut rng = SimRng::seed(2024);
    let cfg = GatewayConfig {
        cpu_per_request: SimDuration::from_millis(8),
        backends_per_az: 6,
        sessions_per_replica: 4_000_000,
        ..GatewayConfig::default()
    };
    let mut gw = Gateway::new(cfg);

    let noisy = GlobalServiceId::compose(TenantId(1), ServiceId(0));
    let victims: Vec<GlobalServiceId> = (2..=5)
        .map(|t| GlobalServiceId::compose(TenantId(t), ServiceId(0)))
        .collect();
    gw.register_service(noisy, &mut rng);
    for &v in &victims {
        gw.register_service(v, &mut rng);
    }
    println!("noisy service on backends {:?}", gw.backends_of(noisy));

    let mut monitor = WaterLevelMonitor::new();
    let mut engine = ScalingEngine::new();
    let rca = RootCauseAnalyzer::default();
    let mut trends: BTreeMap<u32, BackendTrends> = BTreeMap::new();
    let mut sport = 1u16;

    for s in 0..90u64 {
        let noisy_rps = if s >= 30 { 2400 } else { 120 };
        for i in 0..noisy_rps {
            let t = SimTime::from_millis(s * 1000 + (i * 1000 / noisy_rps).min(999));
            sport = sport.wrapping_add(1).max(1);
            let _ = gw.handle_request(t, noisy, &tuple(1, sport), true);
        }
        for (vi, &v) in victims.iter().enumerate() {
            for i in 0..40u64 {
                sport = sport.wrapping_add(1).max(1);
                let t = SimTime::from_millis(s * 1000 + i * 25);
                let _ = gw.handle_request(t, v, &tuple(2 + vi as u32, sport), true);
            }
        }

        if s % 5 == 4 {
            let now = SimTime::from_secs(s + 1);
            let levels = gw.water_levels(now);
            let utils: Vec<(u32, f64)> = levels.iter().map(|w| (w.backend, w.utilization)).collect();
            // Maintain per-backend trend series for RCA.
            for w in &levels {
                let e = trends.entry(w.backend).or_insert_with(|| BackendTrends {
                    backend: w.backend,
                    water_level: Vec::new(),
                    service_rps: BTreeMap::new(),
                });
                e.water_level.push(w.utilization);
                for &(svc, n) in &w.top_services {
                    let series = e.service_rps.entry(svc).or_default();
                    while series.len() + 1 < e.water_level.len() {
                        series.push(0.0);
                    }
                    series.push(n as f64);
                }
                for series in e.service_rps.values_mut() {
                    while series.len() < e.water_level.len() {
                        series.push(0.0);
                    }
                }
            }
            let hot = levels.iter().map(|w| w.utilization).fold(0.0f64, f64::max);
            println!("t={:>3}s hottest backend {:>5.1}%", s + 1, hot * 100.0);

            for (backend, class, decision) in monitor.ingest(now, &levels, 0.70) {
                println!("  ALERT backend {backend}: {class:?}");
                // Root-cause analysis over the alerting backends' trends.
                let alerting: Vec<&BackendTrends> = levels
                    .iter()
                    .filter(|w| w.alert)
                    .filter_map(|w| trends.get(&w.backend))
                    .collect();
                match rca.analyze(&alerting) {
                    RcaVerdict::Pinpointed(svc, r) => {
                        println!("  RCA pinpointed {svc} (correlation {r:.2})")
                    }
                    RcaVerdict::Inconclusive => println!("  RCA inconclusive; falling back"),
                }
                if let MonitorDecision::Scale(service) = decision {
                    let az = gw.placement().az_of(backend).unwrap_or(AzId(0));
                    let record = engine.scale(now, &mut gw, service, az, &utils, &mut rng);
                    println!(
                        "  precise scaling: {:?} onto backend {} (completes in {})",
                        record.kind,
                        record.backend,
                        record.duration()
                    );
                }
            }
        }
    }
    let (served, errors) = gw.stats();
    let (reuse, new) = engine.counts();
    println!("\nserved {served} requests, {errors} errors; scaling ops: {reuse} Reuse, {new} New");
    println!("noisy service now spans backends {:?}", gw.backends_of(noisy));
}
