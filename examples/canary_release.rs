//! Canary release with centralized configuration (§4.1.1 traffic control,
//! Figs. 14/15).
//!
//! Rolls a service from v1 to v2 in three stages (10% → 50% → 100%),
//! checking error rates between stages, and accounts the southbound
//! configuration cost of each stage under the three architectures — the
//! reason Canal's single push wins.
//!
//! ```sh
//! cargo run --example canary_release
//! ```

use canal::control::configure::ConfigPlane;
use canal::http::{Request, RoutePredicate, RouteRule, RouteTable, WeightedTarget};
use canal::mesh::arch::{Architecture, ClusterShape};
use canal::mesh::authz::AuthzPolicy;
use canal::mesh::l7::{L7Engine, L7Outcome};
use canal::sim::{SimRng, SimTime};

fn table_with_split(v2_weight: u32) -> RouteTable {
    let mut t = RouteTable::new();
    let mut targets = vec![WeightedTarget::new("v2", v2_weight.max(1))];
    if v2_weight < 100 {
        targets.insert(0, WeightedTarget::new("v1", 100 - v2_weight));
    }
    t.push(RouteRule::new(
        "checkout",
        RoutePredicate::prefix("/checkout"),
        targets,
    ));
    t
}

/// The v2 build has a small bug rate during the canary (fixed before 100%).
fn v2_error(stage: usize, rng: &mut SimRng) -> bool {
    match stage {
        0 => rng.chance(0.002),
        _ => false,
    }
}

fn main() {
    let mut rng = SimRng::seed(5);
    let mut engine = L7Engine::new(table_with_split(0), AuthzPolicy::default_allow());
    let shape = ClusterShape::production(600);

    for (stage, v2_weight) in [10u32, 50, 100].into_iter().enumerate() {
        println!("--- stage {}: {v2_weight}% to v2 ---", stage + 1);
        // Push the new split. Canal: one push to the gateway.
        engine.install_routes(table_with_split(v2_weight));
        for kind in [Architecture::Sidecar, Architecture::Ambient, Architecture::Canal] {
            let r = ConfigPlane::new(kind).push_update(&shape);
            println!(
                "  config push [{:<13}] {:>6} targets, {:>9} bytes, {:>8} total",
                kind.name(),
                r.targets,
                r.southbound_bytes,
                r.total_time
            );
        }

        // Observe a traffic window.
        let mut v2_hits = 0u32;
        let mut errors = 0u32;
        let n = 5_000;
        for i in 0..n {
            let req = Request::get("/checkout/cart").with_header("Host", "shop");
            match engine.process(SimTime::from_millis(i as u64), 1, &req, rng.f64()) {
                L7Outcome::Forward { target, .. } if target == "v2" => {
                    v2_hits += 1;
                    if v2_error(stage, &mut rng) {
                        errors += 1;
                    }
                }
                L7Outcome::Forward { .. } => {}
                L7Outcome::Reject(_) => errors += 1,
            }
        }
        let observed = v2_hits as f64 / n as f64 * 100.0;
        let err_rate = errors as f64 / v2_hits.max(1) as f64;
        println!(
            "  observed split {observed:.1}% v2; v2 error rate {:.2}%",
            err_rate * 100.0
        );
        if err_rate > 0.01 {
            println!("  error budget exceeded — would roll back here");
            return;
        }
        println!("  healthy; promoting\n");
    }
    println!("canary complete: 100% on v2, one gateway push per stage");
}
