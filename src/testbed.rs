//! High-level testbed: the whole Canal data path behind one handle.
//!
//! Wires a multi-tenant gateway, per-service L7 engines, mTLS identities on
//! the key server, and both observability collectors into a single object a
//! downstream user can drive with real HTTP requests:
//!
//! ```
//! use canal::testbed::{Testbed, TestbedConfig};
//! use canal::http::Request;
//! use canal::sim::SimRng;
//!
//! let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
//! let svc = tb.add_service(1, "orders", &[("/orders", "v1", 100)]);
//! tb.allow(svc, 100); // identity 100 may call the service
//! let out = tb.send(100, svc, Request::get("/orders/1")).unwrap();
//! assert!(out.status.is_success());
//! ```

use canal_gateway::gateway::{Gateway, GatewayConfig, GatewayError};
use canal_http::{
    Request, Response, RoutePredicate, RouteRule, RouteTable, StatusCode, WeightedTarget,
};
use canal_mesh::authz::{AuthzPolicy, AuthzRule};
use canal_mesh::l7::{L7Engine, L7Outcome};
use canal_mesh::observability::{GatewayObservability, NodeObservability};
use canal_net::{
    Endpoint, FiveTuple, GlobalServiceId, PodId, ServiceId, TenantId, TraceContext, VpcAddr, VpcId,
};
use canal_sim::{SimDuration, SimRng, SimTime};
use canal_telemetry::{Collector, HopSite, SegmentKind, Span};
use std::collections::BTreeMap;

/// Testbed parameters.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Gateway deployment shape.
    pub gateway: GatewayConfig,
    /// Modeled gateway L7 processing latency per request.
    pub l7_latency: SimDuration,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            gateway: GatewayConfig::default(),
            l7_latency: SimDuration::from_micros(120),
        }
    }
}

/// The outcome of one request through the testbed.
#[derive(Debug, Clone)]
pub struct TestbedResponse {
    /// HTTP status the caller sees.
    pub status: StatusCode,
    /// Route target version chosen (e.g. "v1"), when forwarded.
    pub target: Option<String>,
    /// Gateway backend/replica that served it, when forwarded.
    pub served_by: Option<(u32, usize)>,
}

/// Errors surfaced by [`Testbed::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestbedError {
    /// The service id was never registered.
    UnknownService,
    /// The request bytes failed to parse.
    BadRequest,
}

struct ServiceState {
    l7: L7Engine,
    allowed: Vec<u64>,
    next_sport: u16,
}

/// The assembled mesh under one handle.
pub struct Testbed {
    cfg: TestbedConfig,
    gateway: Gateway,
    services: BTreeMap<GlobalServiceId, ServiceState>,
    rng: SimRng,
    now: SimTime,
    trace_counter: u64,
    /// On-node L4 observability (client side).
    pub node_obs: NodeObservability,
    /// Gateway L7 observability.
    pub gateway_obs: GatewayObservability,
    /// Trace collector (canal-telemetry): node + gateway spans assemble here.
    pub collector: Collector,
}

impl Testbed {
    /// Build an empty testbed. The caller supplies the seeded `rng` that
    /// drives placement and traffic splitting, so the whole run is
    /// reproducible from wherever that seed came from (`seed-dataflow`).
    pub fn new(cfg: TestbedConfig, rng: SimRng) -> Self {
        Testbed {
            gateway: Gateway::new(cfg.gateway),
            services: BTreeMap::new(),
            rng,
            now: SimTime::ZERO,
            trace_counter: 0,
            node_obs: NodeObservability::new(),
            gateway_obs: GatewayObservability::new(),
            collector: Collector::new(),
            cfg,
        }
    }

    /// Register a tenant service with path-prefix routes:
    /// `(prefix, target_name, weight)`. Multiple entries with the same
    /// prefix form a weighted split. Zero-trust default-deny applies until
    /// [`Self::allow`] grants identities.
    pub fn add_service(
        &mut self,
        tenant: u32,
        _name: &str,
        routes: &[(&str, &str, u32)],
    ) -> GlobalServiceId {
        let service_idx = self
            .services
            .keys()
            .filter(|g| g.tenant() == TenantId(tenant))
            .count() as u32;
        let gid = GlobalServiceId::compose(TenantId(tenant), ServiceId(service_idx));
        self.gateway.register_service(gid, &mut self.rng);

        // Group weighted targets per prefix, preserving first-seen order.
        let mut table = RouteTable::new();
        let mut order: Vec<&str> = Vec::new();
        let mut grouped: BTreeMap<&str, Vec<WeightedTarget>> = BTreeMap::new();
        for &(prefix, target, weight) in routes {
            if !grouped.contains_key(prefix) {
                order.push(prefix);
            }
            grouped
                .entry(prefix)
                .or_default()
                .push(WeightedTarget::new(target, weight));
        }
        for prefix in order {
            if let Some(targets) = grouped.remove(prefix) {
                table.push(RouteRule::new(
                    prefix,
                    RoutePredicate::prefix(prefix),
                    targets,
                ));
            }
        }
        self.services.insert(
            gid,
            ServiceState {
                l7: L7Engine::new(table, AuthzPolicy::default_deny()),
                allowed: Vec::new(),
                next_sport: 1,
            },
        );
        gid
    }

    /// Grant an identity access to every path of a service.
    pub fn allow(&mut self, service: GlobalServiceId, identity: u64) {
        if let Some(state) = self.services.get_mut(&service) {
            // Rebuild authz additively: engines expose policy only via
            // processing, so keep a permissive rule per identity.
            state.l7_authz_push(identity);
        }
    }

    /// Advance the testbed clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Current testbed time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying gateway (failure injection, water levels...).
    pub fn gateway_mut(&mut self) -> &mut Gateway {
        &mut self.gateway
    }

    /// Send one HTTP request from `identity` to `service` through the full
    /// path: on-node L4 span → gateway dispatch → L7 engine → response.
    pub fn send(
        &mut self,
        identity: u64,
        service: GlobalServiceId,
        req: Request,
    ) -> Result<TestbedResponse, TestbedError> {
        let state = self
            .services
            .get_mut(&service)
            .ok_or(TestbedError::UnknownService)?;
        // Serialize + reparse: the wire really carries bytes.
        let wire = req.encode();
        let draw = self.rng.f64();
        let outcome = state
            .l7
            .process_bytes(self.now, identity, &wire, draw)
            .map_err(|_| TestbedError::BadRequest)?;

        self.trace_counter += 1;
        let trace = self.trace_counter;
        // Per-pod L4 labeling at the on-node proxy.
        let pod = PodId((identity % 64) as u32);
        self.node_obs.record_transfer(pod, wire.len() as u64, 0, true);

        let (status, target, served_by) = match outcome {
            L7Outcome::Forward { target, .. } => {
                state.next_sport = state.next_sport.wrapping_add(1).max(1);
                let sport = state.next_sport;
                let tuple = FiveTuple::tcp(
                    Endpoint::new(
                        VpcAddr::new(
                            VpcId(service.tenant().raw()),
                            10,
                            0,
                            (sport >> 8) as u8,
                            sport as u8,
                        ),
                        sport,
                    ),
                    Endpoint::new(VpcAddr::new(VpcId(service.tenant().raw()), 10, 9, 9, 9), 8443),
                );
                match self.gateway.handle_request(self.now, service, &tuple, true) {
                    Ok(served) => (
                        StatusCode::OK,
                        Some(target),
                        Some((served.backend, served.replica)),
                    ),
                    Err(GatewayError::Throttled) => (StatusCode::TOO_MANY_REQUESTS, None, None),
                    Err(_) => (StatusCode::SERVICE_UNAVAILABLE, None, None),
                }
            }
            L7Outcome::Reject(code) => (code, None, None),
        };
        self.gateway_obs.record_request(
            self.now,
            service,
            req.method.as_str(),
            req.path_only(),
            status,
            self.cfg.l7_latency,
        );
        // Trace the request end to end: a root span at the client node proxy
        // wrapping a gateway child span (canal-telemetry assembles them).
        let tc = TraceContext::root(trace, true);
        let mut client_span = Span::from_ctx(tc, 0, HopSite::ClientNodeProxy, self.now);
        client_span.push_segment(SegmentKind::L4Forward, SimDuration::from_micros(20));
        let mut gw_span = Span::from_ctx(
            tc.child_of(0),
            1,
            HopSite::Gateway,
            self.now + SimDuration::from_micros(10),
        );
        gw_span.push_segment(SegmentKind::L7Parse, self.cfg.l7_latency);
        gw_span.error = status.is_error();
        client_span.end = gw_span.end + SimDuration::from_micros(10);
        self.collector.ingest(client_span);
        self.collector.ingest(gw_span);
        Ok(TestbedResponse {
            status,
            target,
            served_by,
        })
    }

    /// Build the HTTP response object a client would receive.
    pub fn to_http_response(outcome: &TestbedResponse) -> Response {
        match outcome.status {
            StatusCode::OK => Response::ok(&b"ok"[..]),
            code => Response::new(code, &b""[..]),
        }
    }
}

impl ServiceState {
    /// Rebuild the engine's zero-trust policy with one more allowed
    /// identity (the engine treats its policy as config, swapped whole —
    /// the same shape as a controller push).
    fn l7_authz_push(&mut self, identity: u64) {
        if !self.allowed.contains(&identity) {
            self.allowed.push(identity);
        }
        let routes = self.l7.routes().clone();
        let mut policy = AuthzPolicy::default_deny();
        policy.push(AuthzRule::allow(&self.allowed, ""));
        self.l7 = L7Engine::new(routes, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
        let svc = tb.add_service(1, "orders", &[("/orders", "v1", 90), ("/orders", "v2", 10)]);
        tb.allow(svc, 100);
        let out = tb.send(100, svc, Request::get("/orders/1")).unwrap();
        assert!(out.status.is_success());
        assert!(out.target.is_some());
        assert!(out.served_by.is_some());
    }

    #[test]
    fn zero_trust_denies_unknown_identities() {
        let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
        let svc = tb.add_service(1, "orders", &[("/orders", "v1", 100)]);
        tb.allow(svc, 100);
        let denied = tb.send(31337, svc, Request::get("/orders/1")).unwrap();
        assert_eq!(denied.status, StatusCode::FORBIDDEN);
        // Multiple identities can be granted.
        tb.allow(svc, 31337);
        let ok = tb.send(31337, svc, Request::get("/orders/1")).unwrap();
        assert!(ok.status.is_success());
        let still_ok = tb.send(100, svc, Request::get("/orders/1")).unwrap();
        assert!(still_ok.status.is_success());
    }

    #[test]
    fn unrouted_path_is_404_and_unknown_service_errors() {
        let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
        let svc = tb.add_service(1, "orders", &[("/orders", "v1", 100)]);
        tb.allow(svc, 1);
        let out = tb.send(1, svc, Request::get("/nowhere")).unwrap();
        assert_eq!(out.status, StatusCode::NOT_FOUND);
        let ghost = GlobalServiceId::compose(TenantId(9), ServiceId(9));
        assert_eq!(
            tb.send(1, ghost, Request::get("/x")).unwrap_err(),
            TestbedError::UnknownService
        );
    }

    #[test]
    fn observability_collects_both_sides() {
        let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
        let svc = tb.add_service(2, "api", &[("/", "v1", 1)]);
        tb.allow(svc, 5);
        for _ in 0..10 {
            tb.advance(SimDuration::from_millis(10));
            tb.send(5, svc, Request::get("/x")).unwrap();
        }
        let (requests, errors, _mean) = tb.gateway_obs.service_summary(svc);
        assert_eq!((requests, errors), (10, 0));
        assert_eq!(tb.node_obs.labeling_ops(), 10);
        // Spans pair up per trace and nest gateway-inside-client.
        let traces = tb.collector.assemble_all();
        assert_eq!(traces.len(), 10);
        assert!(traces.iter().all(|t| t.spans.len() == 2));
        assert!(traces.iter().all(|t| t.well_nested()));
        assert!(traces
            .iter()
            .all(|t| t.critical_path().last().map(|s| s.site) == Some(HopSite::Gateway)));
    }

    #[test]
    fn canary_split_holds_through_the_facade() {
        let mut tb = Testbed::new(TestbedConfig::default(), SimRng::seed(42));
        let svc = tb.add_service(1, "shop", &[("/", "v1", 90), ("/", "v2", 10)]);
        tb.allow(svc, 1);
        let mut v2 = 0;
        let n = 2000;
        for _ in 0..n {
            tb.advance(SimDuration::from_millis(1));
            let out = tb.send(1, svc, Request::get("/item")).unwrap();
            if out.target.as_deref() == Some("v2") {
                v2 += 1;
            }
        }
        let frac = v2 as f64 / n as f64;
        assert!((0.07..0.13).contains(&frac), "{frac}");
    }
}
