//! Facade crate for the Canal Mesh workspace: re-exports every subsystem
//! crate under one name and provides [`testbed`] — the assembled mesh
//! behind a single handle for downstream users, examples and integration
//! tests. See README.md for the architecture overview.

#![forbid(unsafe_code)]

pub mod testbed;

pub use canal_cluster as cluster;
pub use canal_control as control;
pub use canal_crypto as crypto;
pub use canal_gateway as gateway;
pub use canal_http as http;
pub use canal_mesh as mesh;
pub use canal_net as net;
pub use canal_sim as sim;
pub use canal_telemetry as telemetry;
pub use canal_workload as workload;
