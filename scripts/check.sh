#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

# Lint first: canal-lint is std-only and builds in seconds, so contract
# violations surface before the full workspace build. The JSON report is
# written either way (CI archives it as an artifact).
echo "==> canal-lint (determinism / layering / panic-policy / state discipline)"
mkdir -p target
cargo run -q -p canal-lint -- --json > target/canal-lint.json || true
cargo run -q -p canal-lint

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

# Chaos smoke: a compressed fault-injection run. The binary exits nonzero
# if the availability invariant breaks (a service with >=1 live replica in
# a live AZ must serve 100% on the resilient datapath). The dated BENCH
# throughput point lands in target/ (CI archives it).
echo "==> chaos smoke (availability invariant under fault injection)"
cargo run -q --release -p canal-bench --bin chaos -- --fast \
    --bench "target/BENCH_$(date +%F)_fig8.json" >/dev/null

# Surge smoke: a compressed single-tenant 20x overload run. The binary
# exits nonzero unless well-behaved tenants hold their no-surge P99 within
# a bounded factor while the surging tenant degrades gracefully. The dated
# BENCH throughput point lands in target/ (CI archives it).
echo "==> surge smoke (tenant-isolation invariant under overload)"
cargo run -q --release -p canal-bench --bin surge -- --fast \
    --bench "target/BENCH_$(date +%F)_surge.json" >/dev/null

# Trace smoke: a compressed run of the tracing pipeline over the fault
# timeline. The binary exits nonzero unless tail sampling retains the
# error/P999 traces at a <=2% head rate, canal's telemetry cost stays
# below the sidecar baseline, the span-evidence RCA beats trend
# correlation, and double runs are bit-identical.
echo "==> trace smoke (sampling-retention + span-RCA invariants)"
cargo run -q --release -p canal-bench --bin traceview -- --fast >/dev/null

# Rollout smoke: a compressed poisoned-config blast-radius run. The binary
# exits nonzero unless the poisoned version is never committed anywhere
# under canal (NACKed at the canary, fail-static serving keeps availability
# at 100%), rollback is automatic and far faster than operator detection,
# and a valid-but-degrading change is contained to the canary wave.
echo "==> rollout smoke (canary blast-radius + fail-static invariants)"
cargo run -q --release -p canal-bench --bin rollout -- --fast >/dev/null

# Rotation smoke: a compressed cert-rotation handshake-storm run. The
# binary exits nonzero unless the rotating tenant fully re-keys with zero
# availability loss for everyone else, the clock-skew-poisoned bundle is
# NACKed at the canary (zero commits, automatic rollback, clean retry),
# the compromise revocation sticks, the key-server backlog drains, and
# double runs are bit-identical. The JSON report lands in target/ (CI
# archives it as an artifact).
echo "==> rotation smoke (cert-lifecycle + handshake-storm invariants)"
cargo run -q --release -p canal-bench --bin rotation -- --fast \
    --json target/rotation.json >/dev/null

# Drill smoke: a compressed disaster drill — gray gateway, asymmetric
# control-plane partition during an in-flight rollout, planned gateway
# drain, heal. The binary exits nonzero unless the drain loses zero
# established sessions, the gray gateway is quarantined within a bounded
# window with zero false positives, the partition causes no rollback, the
# fleet converges on exactly one config version after heal, and double
# runs are bit-identical. The JSON report and the dated BENCH throughput
# point both land in target/ (CI archives them as artifacts).
echo "==> drill smoke (gray-failure + partition + drain invariants)"
cargo run -q --release -p canal-bench --bin drill -- --fast \
    --json target/drill.json \
    --bench "target/BENCH_$(date +%F).json" >/dev/null

# Policy smoke: a compressed policy-plane blast-radius run. The binary
# exits nonzero unless the poisoned policy cut is NACKed at the canary and
# never committed anywhere (fail-static serving), the wrong-scope deny-all
# change is contained to the canary and rolled back off the deny-spike
# health gate, compiled tables agree with the naive reference
# bit-for-bit, overlapping tenant address spaces never cross-match, and
# double runs are bit-identical. The JSON report and the dated BENCH
# throughput point both land in target/ (CI archives them as artifacts).
echo "==> policy smoke (tenant-isolation + blast-radius invariants)"
cargo run -q --release -p canal-bench --bin policy -- --fast \
    --json target/policy.json \
    --bench "target/BENCH_$(date +%F)_policy.json" >/dev/null

# Failover smoke: a compressed controller-failover drill. The binary exits
# nonzero unless a crash mid-wave is resumed from the write-ahead journal
# with only the orphaned pushes re-sent (zero duplicate canary exposure)
# and exactly one converged version, a crash mid-rollback of a poisoned
# rollout is completed by the next incarnation, every zombie-incarnation
# push is epoch-fenced by the data plane with zero divergence, and double
# runs are bit-identical. The JSON report and the dated BENCH throughput
# point both land in target/ (CI archives them as artifacts).
echo "==> failover smoke (journal-recovery + epoch-fencing invariants)"
cargo run -q --release -p canal-bench --bin failover -- --fast \
    --json target/failover.json \
    --bench "target/BENCH_$(date +%F)_failover.json" >/dev/null

# Clippy enforces the [workspace.lints] table where available; the lint
# binary above already covers the determinism rules, so a missing clippy
# (minimal toolchains) downgrades to a note rather than a failure.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> clippy not installed; skipping (workspace lints still apply on nightly builds)"
fi

echo "All checks passed."
